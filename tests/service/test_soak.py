"""Opt-in soak test: one real server, a storm of mixed-priority clients.

Not part of tier 1 — run explicitly with ``pytest -m soak`` (the default
invocation carries ``-m "not soak"`` via pyproject addopts).  The CI
``service-soak`` job runs it with ``REPRO_SOAK_PROCESSES=4`` and uploads
the final stats snapshot as an artifact.

What it pins, after REPRO_SOAK_SECONDS (default 30) of closed-loop load
from REPRO_SOAK_CLIENTS threads hammering a deliberately small work-unit
budget:

* zero dropped connections and zero ERROR responses — overload is
  expressed *only* through the RETRY path;
* every RETRY carries a positive ``retry_after`` and a known reason;
* the server's STATS counters reconcile **exactly** with the clients'
  own tallies: ``admitted_<cls>`` == OK responses, ``rejected_<cls>`` ==
  RETRY responses, ``retried_<cls>`` == OKs that needed attempt > 0.

Environment knobs: REPRO_SOAK_SECONDS, REPRO_SOAK_CLIENTS,
REPRO_SOAK_PROCESSES, REPRO_SOAK_STATS (path for the JSON snapshot).
"""

import copy
import json
import os
import pathlib
import random
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.service import protocol

pytestmark = pytest.mark.soak

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))
SOAK_CLIENTS = int(os.environ.get("REPRO_SOAK_CLIENTS", "8"))
SOAK_PROCESSES = int(os.environ.get("REPRO_SOAK_PROCESSES", "1"))
STATS_PATH = os.environ.get("REPRO_SOAK_STATS", "")

MAX_ATTEMPTS = 5  # per logical op, then abandon and move on
REASONS = {"queue-full", "client-quota", "class-capacity", "capacity"}
CLASSES = ("interactive", "batch")


def smooth3d(shape, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    x += np.cumsum(rng.standard_normal(shape), axis=1)
    return (x / np.abs(x).max()).astype(np.float32)


@pytest.fixture(scope="module")
def server():
    src = pathlib.Path(__file__).parent.parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + ((os.pathsep + existing) if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--processes", str(SOAK_PROCESSES),
            # a small unit budget so the storm actually trips every
            # admission rule, not just the happy path
            "--max-work-units", "2.0",
            "--max-queue", "16",
            "--stats-interval", "10",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, (line, proc.stderr.read())
        yield int(line.rsplit(":", 1)[1])
    finally:
        proc.terminate()
        proc.wait(timeout=10)


class Tally:
    """One client thread's bookkeeping, merged after the join."""

    def __init__(self):
        self.ok = {c: 0 for c in CLASSES}
        self.rejected = {c: 0 for c in CLASSES}
        self.retried_ok = {c: 0 for c in CLASSES}
        self.errors = []
        self.bad_retries = []  # RETRY responses violating the contract
        self.dropped = False

    def merge(self, other):
        for c in CLASSES:
            self.ok[c] += other.ok[c]
            self.rejected[c] += other.rejected[c]
            self.retried_ok[c] += other.retried_ok[c]
        self.errors.extend(other.errors)
        self.bad_retries.extend(other.bad_retries)
        self.dropped = self.dropped or other.dropped


def fetch_stats(port):
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        req = protocol.StatsRequest()
        sock.sendall(protocol.frame(protocol.encode_request(req)))
        resp = protocol.decode_response(
            protocol.read_frame_sync(sock), protocol.op_for_request(req)
        )
    assert resp.status == protocol.ST_OK
    return resp.mapping


def client_storm(port, client_index, deadline, requests, tally):
    """Closed-loop raw-protocol client: send, tally, retry, repeat."""
    rng = random.Random(0xC0FFEE + client_index)
    try:
        with socket.create_connection(
            ("127.0.0.1", port), timeout=120
        ) as sock:
            op_i = 0
            while time.monotonic() < deadline:
                # shallow-copy the shared template: each thread stamps
                # its own client_id/attempt without racing the others
                req = copy.copy(requests[op_i % len(requests)])
                op_i += 1
                req.client_id = f"soak-{client_index}"
                for attempt in range(MAX_ATTEMPTS):
                    req.attempt = attempt
                    sock.sendall(
                        protocol.frame(protocol.encode_request(req))
                    )
                    resp = protocol.decode_response(
                        protocol.read_frame_sync(sock),
                        protocol.op_for_request(req),
                    )
                    if resp.status == protocol.ST_OK:
                        tally.ok[req.priority] += 1
                        if attempt > 0:
                            tally.retried_ok[req.priority] += 1
                        break
                    if resp.status == protocol.ST_RETRY:
                        tally.rejected[req.priority] += 1
                        if (
                            not resp.retry_after
                            or resp.retry_after <= 0.0
                            or resp.reason not in REASONS
                        ):
                            tally.bad_retries.append(
                                (resp.retry_after, resp.reason)
                            )
                        # honor the hint, jittered, but capped so one
                        # long hint cannot idle the thread out of the run
                        time.sleep(
                            min(0.2, resp.retry_after)
                            * (0.5 + rng.random())
                        )
                        continue
                    tally.errors.append(resp.message)
                    break
    except Exception as exc:  # noqa: BLE001 - any escape = dropped conn
        tally.dropped = True
        tally.errors.append(repr(exc))


class TestSoak:
    def test_sustained_mixed_load_reconciles_exactly(self, server):
        interactive_field = smooth3d((48, 48, 48), seed=1)
        batch_field = smooth3d((96, 96, 96), seed=2)

        # warm both plan families (and build decompress payloads) before
        # the storm so its unit costs are the warm, predictable ones
        with socket.create_connection(
            ("127.0.0.1", server), timeout=300
        ) as sock:
            blobs = {}
            for name, field in (
                ("interactive", interactive_field), ("batch", batch_field),
            ):
                req = protocol.CompressRequest(
                    data=field, codec="qoz", rel_error_bound=1e-3,
                    family=f"soak-{name}",
                )
                sock.sendall(protocol.frame(protocol.encode_request(req)))
                resp = protocol.decode_response(
                    protocol.read_frame_sync(sock),
                    protocol.op_for_request(req),
                )
                assert resp.status == protocol.ST_OK, resp.message
                blobs[name] = resp.blob

        requests = [
            protocol.CompressRequest(
                data=interactive_field, codec="qoz", rel_error_bound=1e-3,
                family="soak-interactive", priority="interactive",
            ),
            protocol.DecompressRequest(
                blob=blobs["interactive"], priority="interactive",
            ),
            protocol.CompressRequest(
                data=interactive_field, codec="qoz", rel_error_bound=1e-3,
                family="soak-interactive", priority="interactive",
            ),
            protocol.CompressRequest(
                data=batch_field, codec="qoz", rel_error_bound=1e-3,
                family="soak-batch", priority="batch",
            ),
        ]

        before = fetch_stats(server)
        deadline = time.monotonic() + SOAK_SECONDS
        tallies = [Tally() for _ in range(SOAK_CLIENTS)]
        threads = [
            threading.Thread(
                target=client_storm,
                args=(server, i, deadline, requests, tallies[i]),
            )
            for i in range(SOAK_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=SOAK_SECONDS + 300)
        assert not any(t.is_alive() for t in threads), "stuck client thread"

        total = Tally()
        for t in tallies:
            total.merge(t)
        after = fetch_stats(server)

        if STATS_PATH:
            pathlib.Path(STATS_PATH).write_text(json.dumps(
                {
                    "soak_seconds": SOAK_SECONDS,
                    "clients": SOAK_CLIENTS,
                    "processes": SOAK_PROCESSES,
                    "stats": after,
                    "client_ok": total.ok,
                    "client_rejected": total.rejected,
                    "client_retried_ok": total.retried_ok,
                },
                indent=2, sort_keys=True,
            ) + "\n")

        # hard failures first: they would explain any reconcile mismatch
        assert not total.dropped, total.errors
        assert not total.errors, total.errors[:10]
        assert not total.bad_retries, total.bad_retries[:10]

        # the storm must have exercised both admission outcomes
        assert sum(total.ok.values()) > 0
        assert sum(total.rejected.values()) > 0

        # exact reconciliation, per class — not approximate, not fuzzy
        for cls in CLASSES:
            delta = {
                k: after[f"{k}_{cls}"] - before[f"{k}_{cls}"]
                for k in ("admitted", "rejected", "retried", "completed",
                          "failed")
            }
            assert delta["admitted"] == total.ok[cls], (cls, delta, total.ok)
            assert delta["rejected"] == total.rejected[cls], (
                cls, delta, total.rejected
            )
            assert delta["retried"] == total.retried_ok[cls], (
                cls, delta, total.retried_ok
            )
            assert delta["completed"] == total.ok[cls]
            assert delta["failed"] == 0

        # every connection the storm opened was also closed by the join
        assert after["connections_open"] == before["connections_open"]
        assert (
            after["connections_total"] - before["connections_total"]
            >= SOAK_CLIENTS
        )
