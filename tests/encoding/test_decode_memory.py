"""Peak-allocation bounds for the decode path.

The pre-vectorization ``BitReader`` expanded the whole packed stream into
an 8x uint8 bit array, and the Huffman decoder materialized Python lists
per byte (and per bit for long-code tables) — peak decode memory scaled
at ~30-90x the compressed payload.  The byte-windowed reader and the
block-based decoder keep scratch bounded by the (constant) decode block
size instead, which is what makes the chunked out-of-core path's
"peak memory ~ one chunk" guarantee true on the read side.

numpy >= 1.22 routes array allocations through tracemalloc, so these
budgets measure real array traffic, not just Python objects.
"""

import tracemalloc

import numpy as np
import pytest

from repro.chunked import ChunkedFile, compress_chunked
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream

#: scratch allowance: a few int64 arrays of the decoder's block size plus
#: the reader's padded copy and window cache (all independent of stream
#: size); the old reader/decoder blow through this by an order of magnitude
_SCRATCH_BUDGET = 3.0  # x compressed size
_SCRATCH_FIXED = 12e6  # bytes


def _peak_extra(fn, *args):
    """Peak traced allocation of ``fn(*args)`` beyond its return value."""
    fn(*args)  # warm caches (decode tables etc.) out of the measurement
    tracemalloc.start()
    out = fn(*args)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak - out.nbytes, out


@pytest.mark.parametrize(
    "make_symbols",
    [
        pytest.param(
            lambda rng: rng.integers(0, 256, size=2_000_000), id="high-entropy"
        ),
        pytest.param(
            lambda rng: np.where(
                rng.random(2_000_000) < 0.97,
                5,
                rng.integers(0, 40, size=2_000_000),
            ),
            id="rle-heavy",
        ),
    ],
)
def test_symbol_stream_decode_allocation_is_bounded(make_symbols):
    rng = np.random.default_rng(7)
    syms = make_symbols(rng).astype(np.int64)
    blob = encode_symbol_stream(syms)
    extra, out = _peak_extra(decode_symbol_stream, blob)
    np.testing.assert_array_equal(out, syms)
    budget = _SCRATCH_BUDGET * len(blob) + _SCRATCH_FIXED
    assert extra <= budget, (
        f"decode scratch {extra / 1e6:.1f} MB exceeds "
        f"{budget / 1e6:.1f} MB for a {len(blob) / 1e6:.1f} MB stream"
    )


def test_decode_scratch_does_not_scale_with_stream_size():
    """Doubling the stream must not double the non-output scratch."""
    rng = np.random.default_rng(8)

    def stream(n):
        return encode_symbol_stream(rng.integers(0, 256, size=n).astype(np.int64))

    small, large = stream(500_000), stream(2_000_000)
    extra_small, _ = _peak_extra(decode_symbol_stream, small)
    extra_large, _ = _peak_extra(decode_symbol_stream, large)
    # 4x the stream; allow scratch to grow only by the output-independent
    # per-call terms (padded copy + token-side arrays), far below 4x
    assert extra_large < 2 * extra_small + _SCRATCH_FIXED


def test_single_chunk_decode_peak_is_chunk_sized():
    """Reading one chunk of a container never unpacks beyond that chunk."""
    rng = np.random.default_rng(9)
    x = np.cumsum(rng.standard_normal((96, 96, 96)), axis=0)
    data = (x / np.abs(x).max()).astype(np.float32)
    blob = compress_chunked(data, codec="sz3", chunks=48, rel_error_bound=1e-3)
    with ChunkedFile(blob) as f:
        chunk_raw = int(np.prod(f.grid.chunk_shape)) * f.dtype.itemsize
        f.chunk(0)  # warm
        tracemalloc.start()
        out = f.chunk(0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    assert out.nbytes <= chunk_raw
    # reconstruction needs a few float64 copies of the chunk, never the
    # full field (8 chunks) or a super-linear bit expansion
    assert peak <= 6 * chunk_raw + _SCRATCH_FIXED
