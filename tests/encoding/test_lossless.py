"""Tests for the lossless byte / float coders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.lossless import (
    compress_bytes,
    compress_floats_lossless,
    decompress_bytes,
    decompress_floats_lossless,
)


class TestCompressBytes:
    def test_empty(self):
        assert decompress_bytes(compress_bytes(b"")) == b""

    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog" * 100
        blob = compress_bytes(data)
        assert decompress_bytes(blob) == data
        assert len(blob) < len(data)

    def test_roundtrip_random_falls_back_to_raw(self, rng):
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        blob = compress_bytes(data)
        assert decompress_bytes(blob) == data
        # raw fallback: no more than header + data
        assert len(blob) <= len(data) + 16

    def test_single_byte(self):
        assert decompress_bytes(compress_bytes(b"\x42")) == b"\x42"

    def test_constant_bytes_compress_well(self):
        data = b"\x00" * 10000
        blob = compress_bytes(data)
        assert decompress_bytes(blob) == data
        assert len(blob) < 2000


class TestFloatsLossless:
    def test_smooth_field_roundtrip_and_gain(self):
        x = np.linspace(0, 1, 8192, dtype=np.float32)
        vals = np.sin(2 * np.pi * x).astype(np.float32)
        blob = compress_floats_lossless(vals)
        out = decompress_floats_lossless(blob)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, vals)
        assert len(blob) < vals.nbytes  # smooth data must actually compress

    def test_float64_roundtrip(self, rng):
        vals = np.cumsum(rng.standard_normal(1000))
        blob = compress_floats_lossless(vals)
        np.testing.assert_array_equal(decompress_floats_lossless(blob), vals)

    def test_single_value(self):
        vals = np.array([3.14159], dtype=np.float64)
        np.testing.assert_array_equal(
            decompress_floats_lossless(compress_floats_lossless(vals)), vals
        )

    def test_special_bit_patterns(self):
        vals = np.array([0.0, -0.0, 1e-38, -1e38, 7.25], dtype=np.float32)
        out = decompress_floats_lossless(compress_floats_lossless(vals))
        np.testing.assert_array_equal(
            out.view(np.uint32), vals.view(np.uint32)
        )  # bit-exact incl. signed zero

    def test_constant_array(self):
        vals = np.full(5000, 2.5, dtype=np.float32)
        blob = compress_floats_lossless(vals)
        np.testing.assert_array_equal(decompress_floats_lossless(blob), vals)
        assert len(blob) < 1000


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=2000),
    st.sampled_from([np.float32, np.float64]),
)
def test_floats_roundtrip_property(seed, n, dtype):
    rng = np.random.default_rng(seed)
    vals = (rng.standard_normal(n) * 10.0 ** rng.integers(-5, 5)).astype(dtype)
    out = decompress_floats_lossless(compress_floats_lossless(vals))
    assert out.dtype == np.dtype(dtype)
    uint_t = np.uint32 if dtype == np.float32 else np.uint64
    np.testing.assert_array_equal(out.view(uint_t), vals.view(uint_t))


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=3000))
def test_bytes_roundtrip_property(data):
    assert decompress_bytes(compress_bytes(data)) == data
