"""Unit + property tests for the zero-run tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.rle import (
    RUN_CLASSES,
    _floor_log2,
    detokenize_runs,
    run_token_widths,
    tokenize_runs,
)
from repro.errors import DecompressionError


def roundtrip(symbols, dominant, alphabet):
    tokens, extras, widths = tokenize_runs(symbols, dominant, alphabet)
    out = detokenize_runs(tokens, extras, dominant, alphabet)
    return out, tokens, extras, widths


class TestFloorLog2:
    def test_exact_powers(self):
        x = np.array([1, 2, 4, 8, 1 << 40], dtype=np.int64)
        np.testing.assert_array_equal(_floor_log2(x), [0, 1, 2, 3, 40])

    def test_boundaries(self):
        x = np.array([3, 5, 7, 9, (1 << 30) - 1, (1 << 30) + 1], dtype=np.int64)
        np.testing.assert_array_equal(_floor_log2(x), [1, 2, 2, 3, 29, 30])

    def test_large_values(self):
        x = np.array([(1 << 52) - 1, 1 << 52], dtype=np.int64)
        np.testing.assert_array_equal(_floor_log2(x), [51, 52])


class TestTokenizeRuns:
    def test_empty_stream(self):
        out, tokens, extras, widths = roundtrip(np.zeros(0, dtype=np.int64), 0, 4)
        assert out.size == 0 and tokens.size == 0

    def test_no_dominant_occurrences(self):
        syms = np.array([1, 2, 3, 2, 1], dtype=np.int64)
        out, tokens, extras, _ = roundtrip(syms, 0, 4)
        np.testing.assert_array_equal(out, syms)
        np.testing.assert_array_equal(tokens, syms)
        assert extras.size == 0

    def test_all_dominant_single_token(self):
        syms = np.zeros(1000, dtype=np.int64)
        out, tokens, extras, widths = roundtrip(syms, 0, 4)
        np.testing.assert_array_equal(out, syms)
        assert tokens.size == 1
        assert tokens[0] == 4 + 9  # run class floor(log2(1000)) = 9
        assert extras[0] == 1000 - 512
        assert widths[0] == 9

    def test_single_dominant_symbol_run_of_one(self):
        syms = np.array([1, 0, 1], dtype=np.int64)
        out, tokens, extras, widths = roundtrip(syms, 0, 2)
        np.testing.assert_array_equal(out, syms)
        assert tokens.tolist() == [1, 2, 1]  # run class 0
        assert widths.tolist() == [0]
        assert extras.tolist() == [0]

    def test_mixed_runs(self):
        syms = np.array([0, 0, 0, 5, 5, 0, 7, 0, 0, 0, 0], dtype=np.int64)
        out, tokens, extras, widths = roundtrip(syms, 0, 8)
        np.testing.assert_array_equal(out, syms)
        # run(3), 5, 5, run(1), 7, run(4)
        assert tokens.tolist() == [8 + 1, 5, 5, 8 + 0, 7, 8 + 2]
        assert extras.tolist() == [1, 0, 0]

    def test_run_token_widths_recovers_widths(self):
        syms = np.array([0] * 17 + [3] + [0] * 2, dtype=np.int64)
        tokens, extras, widths = tokenize_runs(syms, 0, 4)
        np.testing.assert_array_equal(run_token_widths(tokens, 4), widths)

    def test_detokenize_rejects_bad_token(self):
        with pytest.raises(DecompressionError):
            detokenize_runs(
                np.array([4 + RUN_CLASSES], dtype=np.int64),
                np.zeros(1, dtype=np.uint64),
                0,
                4,
            )

    def test_detokenize_rejects_extras_mismatch(self):
        with pytest.raises(DecompressionError):
            detokenize_runs(
                np.array([5], dtype=np.int64), np.zeros(0, dtype=np.uint64), 0, 4
            )

    def test_detokenize_rejects_oversized_remainder(self):
        """A class-k run must carry a remainder < 2**k; anything larger is
        a forged length that would balloon np.repeat."""
        tokens = np.array([7, 0, 7], dtype=np.int64)  # runs of class 7 - 4 = 3
        extras = np.array([8, 1], dtype=np.uint64)  # 8 >= 2**3: forged
        with pytest.raises(DecompressionError):
            detokenize_runs(tokens, extras, dominant=0, alphabet_size=4)
        extras = np.array([7, 1], dtype=np.uint64)  # legal remainders decode
        out = detokenize_runs(tokens, extras, dominant=0, alphabet_size=4)
        assert out.size == (8 + 7) + 1 + (8 + 1)

    def test_detokenize_rejects_wrong_expected_size(self):
        syms = np.array([0, 0, 0, 0, 2, 0, 0], dtype=np.int64)
        tokens, extras, _ = tokenize_runs(syms, 0, 4)
        out = detokenize_runs(tokens, extras, 0, 4, expected_size=syms.size)
        np.testing.assert_array_equal(out, syms)
        with pytest.raises(DecompressionError):
            detokenize_runs(tokens, extras, 0, 4, expected_size=syms.size + 1)

    def test_detokenize_rejects_hostile_top_class(self):
        """Class 63 encodes runs >= 2**63 — unrepresentable; must raise,
        not overflow int64 into a negative repeat count."""
        tokens = np.array([4 + 63], dtype=np.int64)
        extras = np.array([0], dtype=np.uint64)
        with pytest.raises(DecompressionError):
            detokenize_runs(tokens, extras, dominant=0, alphabet_size=4)

    def test_dominant_not_zero(self):
        syms = np.array([3, 3, 3, 1, 3, 3], dtype=np.int64)
        out, tokens, _, _ = roundtrip(syms, 3, 4)
        np.testing.assert_array_equal(out, syms)
        assert (tokens >= 4).sum() == 2


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=3000),
    st.integers(min_value=2, max_value=12),
    st.floats(min_value=0.0, max_value=0.98),
)
def test_roundtrip_property(seed, n, alphabet, dominance):
    """Streams with arbitrary dominance levels roundtrip exactly."""
    rng = np.random.default_rng(seed)
    dom = int(rng.integers(0, alphabet))
    syms = rng.integers(0, alphabet, size=n)
    mask = rng.random(n) < dominance
    syms[mask] = dom
    out, tokens, extras, widths = roundtrip(syms.astype(np.int64), dom, alphabet)
    np.testing.assert_array_equal(out, syms)
    # widths always recoverable from tokens alone
    np.testing.assert_array_equal(run_token_widths(tokens, alphabet), widths)
    # extras fit in their declared widths
    for v, w in zip(extras.tolist(), widths.tolist()):
        assert v < (1 << w) if w else v == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=400))
def test_roundtrip_explicit_lists(values):
    syms = np.array(values, dtype=np.int64)
    out, _, _, _ = roundtrip(syms, 2, 6)
    np.testing.assert_array_equal(out, syms)
