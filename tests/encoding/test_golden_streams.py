"""Stream-format compatibility pins.

``tests/data/golden/golden_streams.npz`` freezes (blob, expected output)
pairs produced by the pre-vectorization encoder/decoder.  These tests
prove two invariants across decoder refactors:

1. every historical blob (v1 and v2 headers) still decodes to exactly
   the recorded output, and
2. the encoder still emits byte-identical blobs for the recorded inputs
   (so new archives interoperate with old readers too).
"""

import pathlib

import numpy as np
import pytest

from repro.compressors.base import decompress_any
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream

GOLDEN = (
    pathlib.Path(__file__).parent.parent / "data" / "golden" / "golden_streams.npz"
)

SYMBOL_CASES = [
    "rle_heavy",
    "uniform",
    "long_codes",
    "sparse_alphabet",
    "tiny",
    "empty",
]
CODEC_CASES = ["sz2", "sz3", "qoz", "zfp", "mgard", "sz3_v1"]


@pytest.fixture(scope="module")
def golden():
    return np.load(GOLDEN)


@pytest.mark.parametrize("name", SYMBOL_CASES)
def test_golden_symbol_blob_decodes_identically(golden, name):
    blob = golden[f"sym_{name}__blob"].tobytes()
    expected = golden[f"sym_{name}__input"]
    np.testing.assert_array_equal(decode_symbol_stream(blob), expected)


@pytest.mark.parametrize("name", SYMBOL_CASES)
def test_golden_symbol_encoder_is_byte_stable(golden, name):
    syms = golden[f"sym_{name}__input"]
    blob = golden[f"sym_{name}__blob"].tobytes()
    assert encode_symbol_stream(syms) == blob


@pytest.mark.parametrize("name", CODEC_CASES)
def test_golden_codec_blob_decodes_identically(golden, name):
    blob = golden[f"codec_{name}__blob"].tobytes()
    expected = golden[f"codec_{name}__recon"]
    out = decompress_any(blob)
    assert out.dtype == expected.dtype
    assert out.shape == expected.shape
    np.testing.assert_array_equal(out, expected)
