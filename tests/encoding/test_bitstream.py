"""Unit + property tests for the bit-level writer/reader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitReader, BitWriter
from repro.errors import DecompressionError


class TestBitWriterBasics:
    def test_empty_writer_returns_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit(self):
        w = BitWriter()
        w.write_uint(1, 1)
        assert w.getvalue() == b"\x80"
        assert w.bit_length == 1

    def test_msb_first_byte_layout(self):
        w = BitWriter()
        w.write_uint(0b1011, 4)
        w.write_uint(0b0010, 4)
        assert w.getvalue() == bytes([0b10110010])

    def test_crosses_byte_boundary(self):
        w = BitWriter()
        w.write_uint(0x1FF, 9)
        data = w.getvalue()
        assert len(data) == 2
        assert data == bytes([0xFF, 0x80])

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write_uint(0, 0)
        assert w.bit_length == 0

    def test_value_too_large_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(4, 2)

    def test_negative_value_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(-1, 4)

    def test_width_over_64_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(0, 65)

    def test_full_64bit_value(self):
        w = BitWriter()
        w.write_uint(2**64 - 1, 64)
        r = BitReader(w.getvalue())
        assert r.read_uint(64) == 2**64 - 1

    def test_write_array_scalar_width(self):
        w = BitWriter()
        w.write_array(np.array([1, 2, 3], dtype=np.uint64), 4)
        assert w.bit_length == 12
        r = BitReader(w.getvalue())
        assert r.read_array(3, 4).tolist() == [1, 2, 3]

    def test_write_array_varwidths(self):
        w = BitWriter()
        vals = np.array([1, 5, 0, 7], dtype=np.uint64)
        widths = np.array([1, 3, 2, 3], dtype=np.uint8)
        w.write_array(vals, widths)
        assert w.bit_length == 9
        r = BitReader(w.getvalue())
        assert r.read_varwidth_array(widths).tolist() == [1, 5, 0, 7]

    def test_write_array_shape_mismatch_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_array(np.array([1, 2], dtype=np.uint64),
                          np.array([1], dtype=np.uint8))

    def test_write_empty_array(self):
        w = BitWriter()
        w.write_array(np.zeros(0, dtype=np.uint64), 8)
        assert w.getvalue() == b""


class TestBitReaderBasics:
    def test_read_uint_roundtrip_mixed(self):
        w = BitWriter()
        w.write_uint(5, 3)
        w.write_uint(1000, 17)
        w.write_uint(0, 2)
        r = BitReader(w.getvalue())
        assert r.read_uint(3) == 5
        assert r.read_uint(17) == 1000
        assert r.read_uint(2) == 0

    def test_exhaustion_raises(self):
        r = BitReader(b"\xff")
        r.read_uint(8)
        with pytest.raises(DecompressionError):
            r.read_uint(1)

    def test_declared_bit_length_enforced(self):
        with pytest.raises(DecompressionError):
            BitReader(b"\xff", bit_length=16)

    def test_declared_bit_length_truncates(self):
        r = BitReader(b"\xff", bit_length=3)
        assert r.remaining == 3

    def test_read_array_empty(self):
        r = BitReader(b"")
        assert r.read_array(0, 8).size == 0

    def test_read_zero_width_array(self):
        r = BitReader(b"\x00")
        assert r.read_array(5, 0).tolist() == [0] * 5

    def test_varwidth_with_zero_widths(self):
        w = BitWriter()
        w.write_array(np.array([3], dtype=np.uint64), np.array([2], dtype=np.uint8))
        r = BitReader(w.getvalue())
        widths = np.array([0, 2, 0], dtype=np.uint8)
        assert r.read_varwidth_array(widths).tolist() == [0, 3, 0]

    def test_position_and_advance(self):
        r = BitReader(b"\xaa\xbb")
        r.read_uint(4)
        assert r.position == 4
        r.advance(8)
        assert r.position == 12
        with pytest.raises(DecompressionError):
            r.advance(5)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**64 - 1),
                  st.integers(min_value=1, max_value=64)),
        min_size=0,
        max_size=200,
    )
)
def test_scalar_roundtrip_property(items):
    """Any sequence of (value, width) pairs roundtrips exactly."""
    w = BitWriter()
    clipped = [(v & ((1 << n) - 1) if n < 64 else v, n) for v, n in items]
    for v, n in clipped:
        w.write_uint(v, n)
    r = BitReader(w.getvalue(), bit_length=w.bit_length)
    for v, n in clipped:
        assert r.read_uint(n) == v
    assert r.remaining == 0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31),
)
def test_array_roundtrip_property(count, width, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 2**width, size=count, dtype=np.uint64)
    w = BitWriter()
    w.write_array(vals, width)
    r = BitReader(w.getvalue())
    out = r.read_array(count, width)
    np.testing.assert_array_equal(out, vals)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=2**31))
def test_varwidth_roundtrip_property(count, seed):
    rng = np.random.default_rng(seed)
    widths = rng.integers(0, 33, size=count).astype(np.uint8)
    vals = np.array(
        [rng.integers(0, 1 << int(w)) if w else 0 for w in widths],
        dtype=np.uint64,
    )
    w = BitWriter()
    w.write_array(vals, widths)
    r = BitReader(w.getvalue())
    out = r.read_varwidth_array(widths)
    np.testing.assert_array_equal(out, vals)


def test_interleaved_scalar_and_array_reads():
    w = BitWriter()
    w.write_uint(42, 13)
    w.write_array(np.arange(10, dtype=np.uint64), 7)
    w.write_uint(7, 3)
    r = BitReader(w.getvalue(), bit_length=w.bit_length)
    assert r.read_uint(13) == 42
    np.testing.assert_array_equal(r.read_array(10, 7), np.arange(10))
    assert r.read_uint(3) == 7
    assert r.remaining == 0
