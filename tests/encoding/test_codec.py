"""Tests for the composed symbol-stream codec (remap + RLE + Huffman)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.codec import (
    decode_symbol_stream,
    encode_symbol_stream,
    estimate_stream_bits,
    shannon_bits,
)


class TestSymbolStream:
    def test_empty(self):
        blob = encode_symbol_stream(np.zeros(0, dtype=np.int64))
        assert decode_symbol_stream(blob).size == 0

    def test_roundtrip_quantization_like_stream(self, rng):
        # typical quant indices: concentrated around a large offset (radius)
        codes = 32768 + np.clip(
            np.rint(rng.standard_normal(20000) * 2), -20, 20
        ).astype(np.int64)
        blob = encode_symbol_stream(codes)
        np.testing.assert_array_equal(decode_symbol_stream(blob), codes)

    def test_run_heavy_stream_compresses_below_half_bit(self, rng):
        codes = np.full(50000, 100, dtype=np.int64)
        idx = rng.choice(50000, size=500, replace=False)
        codes[idx] = rng.integers(90, 110, size=500)
        blob = encode_symbol_stream(codes)
        np.testing.assert_array_equal(decode_symbol_stream(blob), codes)
        assert len(blob) * 8 / codes.size < 0.5  # needs RLE to get here

    def test_rle_disabled(self, rng):
        codes = np.full(5000, 7, dtype=np.int64)
        codes[::7] = 9
        blob = encode_symbol_stream(codes, use_rle=False)
        np.testing.assert_array_equal(decode_symbol_stream(blob), codes)

    def test_negative_codes_rejected(self):
        with pytest.raises(ValueError):
            encode_symbol_stream(np.array([-1, 2], dtype=np.int64))

    def test_single_element(self):
        blob = encode_symbol_stream(np.array([12345], dtype=np.int64))
        np.testing.assert_array_equal(decode_symbol_stream(blob), [12345])

    def test_constant_stream(self):
        codes = np.full(100000, 65535, dtype=np.int64)
        blob = encode_symbol_stream(codes)
        np.testing.assert_array_equal(decode_symbol_stream(blob), codes)
        assert len(blob) < 200

    def test_offset_remap_keeps_alphabet_small(self):
        codes = np.array([1000000, 1000001, 1000002] * 100, dtype=np.int64)
        blob = encode_symbol_stream(codes)
        np.testing.assert_array_equal(decode_symbol_stream(blob), codes)
        assert len(blob) < 400


class TestEstimate:
    def test_shannon_bits_uniform(self):
        assert shannon_bits(np.array([8, 8])) == pytest.approx(16.0)

    def test_shannon_bits_empty(self):
        assert shannon_bits(np.zeros(3, dtype=np.int64)) == 0.0

    def test_estimate_tracks_actual_size(self, rng):
        for dominance in (0.0, 0.5, 0.95):
            codes = rng.integers(0, 64, size=30000).astype(np.int64)
            mask = rng.random(30000) < dominance
            codes[mask] = 32
            actual = len(encode_symbol_stream(codes)) * 8
            est = estimate_stream_bits(codes)
            assert 0.6 * actual <= est <= 1.4 * actual + 512

    def test_estimate_empty(self):
        assert estimate_stream_bits(np.zeros(0, dtype=np.int64)) == 0.0

    def test_histogram_estimator_matches_materialized_tokens(self, rng):
        """The repeat-free estimator must score the *identical* histogram
        the tokenizer would produce — QoZ tuning decisions (and therefore
        output bytes) hinge on bit-for-bit equal trial scores."""
        from repro.encoding.codec import shannon_bits
        from repro.encoding.rle import run_token_histogram, tokenize_runs

        for dominance in (0.3, 0.8, 0.99):
            syms = rng.integers(0, 40, size=50000).astype(np.int64)
            syms[rng.random(50000) < dominance] = 7
            alphabet = int(syms.max()) + 1
            tokens, _vals, widths = tokenize_runs(syms, 7, alphabet)
            freqs, extra_bits = run_token_histogram(syms, 7)
            tok_counts = np.bincount(tokens)
            assert extra_bits == int(widths.astype(np.int64).sum())
            assert int(np.count_nonzero(freqs)) == int(
                np.count_nonzero(tok_counts)
            )
            # same positive-entry sequence => identical Shannon float
            assert shannon_bits(freqs) == shannon_bits(tok_counts)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=100),
    st.floats(min_value=0.0, max_value=1.0),
    st.booleans(),
)
def test_roundtrip_property(seed, n, alphabet, dominance, use_rle):
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, 100000))
    codes = offset + rng.integers(0, alphabet, size=n)
    mask = rng.random(n) < dominance
    codes[mask] = offset + alphabet // 2
    blob = encode_symbol_stream(codes.astype(np.int64), use_rle=use_rle)
    np.testing.assert_array_equal(decode_symbol_stream(blob), codes)
