"""Unit + property tests for the canonical Huffman coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import MAX_CODE_LENGTH, HuffmanCode


def roundtrip(symbols, alphabet):
    code = HuffmanCode.from_symbols(symbols, alphabet)
    w = BitWriter()
    code.serialize(w)
    code.encode(symbols, w)
    r = BitReader(w.getvalue())
    code2 = HuffmanCode.deserialize(r)
    out = code2.decode(r, symbols.size)
    return out, code


class TestHuffmanBuild:
    def test_single_symbol_gets_length_one(self):
        code = HuffmanCode.from_frequencies(np.array([0, 10, 0]))
        assert code.lengths[1] == 1
        assert code.lengths[0] == 0 and code.lengths[2] == 0

    def test_two_equal_symbols(self):
        code = HuffmanCode.from_frequencies(np.array([5, 5]))
        assert code.lengths.tolist() == [1, 1]
        assert sorted(code.codes.tolist()) == [0, 1]

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(0, 1000, size=64)
        code = HuffmanCode.from_frequencies(freqs)
        lens = code.lengths[code.lengths > 0].astype(np.float64)
        assert np.sum(2.0 ** -lens) <= 1.0 + 1e-12

    def test_skewed_distribution_is_length_limited(self):
        # Fibonacci-like frequencies normally produce very deep trees
        freqs = np.array([1, 1] + [0] * 3, dtype=np.int64)
        fib = [1, 1]
        for _ in range(60):
            fib.append(fib[-1] + fib[-2])
        freqs = np.array(fib, dtype=np.int64)
        code = HuffmanCode.from_frequencies(freqs)
        assert code.lengths.max() <= MAX_CODE_LENGTH

    def test_more_frequent_symbols_get_shorter_codes(self):
        freqs = np.array([1000, 10, 10, 1])
        code = HuffmanCode.from_frequencies(freqs)
        assert code.lengths[0] <= code.lengths[1]
        assert code.lengths[1] <= code.lengths[3]

    def test_optimality_matches_entropy_within_one_bit(self):
        rng = np.random.default_rng(1)
        syms = rng.integers(0, 16, size=20000)
        freqs = np.bincount(syms, minlength=16).astype(np.float64)
        p = freqs / freqs.sum()
        entropy = -(p[p > 0] * np.log2(p[p > 0])).sum()
        code = HuffmanCode.from_frequencies(freqs.astype(np.int64))
        avg_len = (freqs * code.lengths).sum() / freqs.sum()
        assert entropy <= avg_len <= entropy + 1.0


class TestHuffmanRoundtrip:
    def test_basic_roundtrip(self):
        rng = np.random.default_rng(2)
        syms = rng.integers(0, 20, size=5000)
        out, _ = roundtrip(syms, 20)
        np.testing.assert_array_equal(out, syms)

    def test_single_distinct_symbol_stream(self):
        syms = np.full(100, 7, dtype=np.int64)
        out, code = roundtrip(syms, 10)
        np.testing.assert_array_equal(out, syms)
        assert code.lengths[7] == 1

    def test_empty_stream(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1]))
        w = BitWriter()
        code.encode(np.zeros(0, dtype=np.int64), w)
        assert w.bit_length == 0
        r = BitReader(b"")
        assert code.decode(r, 0).size == 0

    def test_long_codes_use_escape_path(self):
        # geometric frequencies force code lengths past the 16-bit table
        n = 24
        freqs = (2 ** np.arange(n, dtype=np.float64)).astype(np.int64)
        code = HuffmanCode(lengths=HuffmanCode.from_frequencies(freqs).lengths)
        assert code.lengths.max() > 16
        rng = np.random.default_rng(3)
        syms = rng.choice(n, p=freqs / freqs.sum(), size=4000)
        w = BitWriter()
        code.encode(syms, w)
        r = BitReader(w.getvalue())
        out = code.decode(r, syms.size)
        np.testing.assert_array_equal(out, syms)

    def test_large_alphabet_sparse(self):
        syms = np.array([10000, 50000, 10000, 3, 50000, 3], dtype=np.int64)
        out, _ = roundtrip(syms, 65536)
        np.testing.assert_array_equal(out, syms)

    def test_decode_after_other_fields(self):
        rng = np.random.default_rng(4)
        syms = rng.integers(0, 8, size=300)
        code = HuffmanCode.from_symbols(syms, 8)
        w = BitWriter()
        w.write_uint(123, 20)
        code.serialize(w)
        code.encode(syms, w)
        w.write_uint(77, 9)
        r = BitReader(w.getvalue())
        assert r.read_uint(20) == 123
        code2 = HuffmanCode.deserialize(r)
        np.testing.assert_array_equal(code2.decode(r, syms.size), syms)
        assert r.read_uint(9) == 77

    def test_encode_symbol_without_code_raises(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1, 0]))
        with pytest.raises(ValueError):
            code.encode(np.array([2]), BitWriter())

    def test_encoded_bit_count_matches_actual(self):
        rng = np.random.default_rng(5)
        syms = rng.integers(0, 12, size=1000)
        freqs = np.bincount(syms, minlength=12)
        code = HuffmanCode.from_frequencies(freqs)
        w = BitWriter()
        code.encode(syms, w)
        assert w.bit_length == code.encoded_bit_count(freqs)

    def test_encoded_bit_count_rejects_mass_outside_alphabet(self):
        code = HuffmanCode.from_frequencies(np.array([5, 5, 5]))
        # longer histogram is fine while the extra bins are empty ...
        assert code.encoded_bit_count(np.array([1, 1, 1, 0, 0])) > 0
        # ... but silent truncation of real mass would misprice the stream
        with pytest.raises(ValueError):
            code.encoded_bit_count(np.array([1, 1, 1, 0, 7]))

    def test_encoded_bit_count_rejects_unencodable_symbols(self):
        code = HuffmanCode.from_frequencies(np.array([5, 5, 0]))
        assert code.lengths[2] == 0
        with pytest.raises(ValueError):
            code.encoded_bit_count(np.array([1, 1, 1]))
        # zero mass on the codeless symbol stays countable
        assert code.encoded_bit_count(np.array([1, 1, 0])) == 2

    def test_deserialize_rejects_kraft_violations(self):
        from repro.errors import DecompressionError

        # three 1-bit codes cannot coexist: 3 * 2^-1 > 1
        w = BitWriter()
        w.write_uint(3, 32)  # alphabet size
        w.write_uint(3, 32)  # nonzero count
        w.write_uint(1, 1)  # dense
        w.write_array(np.array([1, 1, 1], dtype=np.uint64), 6)
        with pytest.raises(DecompressionError):
            HuffmanCode.deserialize(BitReader(w.getvalue()))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=2, max_value=300),
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.1, max_value=8.0),
)
def test_roundtrip_property(n, alphabet, seed, skew):
    """Random (possibly heavily skewed) streams roundtrip exactly."""
    rng = np.random.default_rng(seed)
    weights = rng.random(alphabet) ** skew
    weights /= weights.sum()
    syms = rng.choice(alphabet, p=weights, size=n)
    out, _ = roundtrip(syms, alphabet)
    np.testing.assert_array_equal(out, syms)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_serialize_deserialize_identity(seed):
    rng = np.random.default_rng(seed)
    freqs = rng.integers(0, 50, size=rng.integers(2, 100))
    if freqs.sum() == 0:
        freqs[0] = 1
    code = HuffmanCode.from_frequencies(freqs)
    w = BitWriter()
    code.serialize(w)
    r = BitReader(w.getvalue())
    code2 = HuffmanCode.deserialize(r)
    np.testing.assert_array_equal(code.lengths, code2.lengths)
    np.testing.assert_array_equal(code.codes, code2.codes)
