"""Tests for the parallel I/O model and the multi-process executor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    IOSystemModel,
    compress_fields_parallel,
    decompress_blobs_parallel,
    dump_load_series,
)


class TestIOModel:
    def setup_method(self):
        self.model = IOSystemModel()

    def test_bandwidth_saturates(self):
        bw1 = self.model.aggregate_bandwidth_gbs(512)
        bw2 = self.model.aggregate_bandwidth_gbs(8192)
        assert bw1 < bw2 < self.model.peak_bandwidth_gbs
        assert bw1 == pytest.approx(self.model.peak_bandwidth_gbs / 2)

    def test_dump_time_decreases_with_cr_at_scale(self):
        t_low = self.model.dump_time_s(8192, 10.0, 130.0)
        t_high = self.model.dump_time_s(8192, 70.0, 130.0)
        assert t_high < t_low

    def test_fast_codec_wins_at_small_scale(self):
        # compute-bound regime: throughput dominates
        slow_high_cr = self.model.dump_time_s(64, 70.0, 100.0)
        fast_low_cr = self.model.dump_time_s(64, 11.0, 550.0)
        assert fast_low_cr < slow_high_cr

    def test_high_cr_codec_wins_at_large_scale(self):
        # bandwidth-bound regime: CR dominates (Fig. 14 crossover)
        slow_high_cr = self.model.dump_time_s(800000, 70.0, 100.0)
        fast_low_cr = self.model.dump_time_s(800000, 11.0, 550.0)
        assert slow_high_cr < fast_low_cr

    def test_compression_beats_raw_at_scale(self):
        assert self.model.dump_time_s(8192, 20.0, 120.0) < \
            self.model.raw_dump_time_s(8192)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            self.model.aggregate_bandwidth_gbs(0)
        with pytest.raises(ConfigurationError):
            self.model.dump_time_s(64, -1.0, 100.0)
        with pytest.raises(ConfigurationError):
            self.model.load_time_s(64, 10.0, 0.0)

    def test_series_rows(self):
        stats = {
            "qoz": {"cr": 70.0, "compress_mbps": 120.0, "decompress_mbps": 300.0},
            "zfp": {"cr": 11.0, "compress_mbps": 550.0, "decompress_mbps": 900.0},
        }
        rows = dump_load_series(IOSystemModel(), [1024, 8192], stats)
        assert len(rows) == 4
        assert {r["codec"] for r in rows} == {"qoz", "zfp"}
        assert all(r["dump_s"] > 0 and r["load_s"] > 0 for r in rows)


class TestExecutor:
    def _fields(self, k=3):
        rng = np.random.default_rng(0)
        x = np.linspace(0, np.pi, 48)
        base = np.sin(x)[:, None] * np.cos(x)[None, :]
        return [
            (base + 0.01 * rng.standard_normal((48, 48))).astype(np.float32)
            for _ in range(k)
        ]

    def test_serial_path(self):
        fields = self._fields(2)
        blobs = compress_fields_parallel(
            fields, "sz3", rel_error_bound=1e-3, processes=1
        )
        outs = decompress_blobs_parallel(blobs, processes=1)
        for f, o in zip(fields, outs):
            eb = 1e-3 * (f.max() - f.min())
            assert np.abs(o.astype(np.float64) - f.astype(np.float64)).max() <= eb

    def test_parallel_matches_serial(self):
        fields = self._fields(4)
        serial = compress_fields_parallel(
            fields, "sz3", rel_error_bound=1e-3, processes=1
        )
        parallel = compress_fields_parallel(
            fields, "sz3", rel_error_bound=1e-3, processes=2
        )
        assert [len(b) for b in serial] == [len(b) for b in parallel]
        for s, p in zip(serial, parallel):
            assert s == p  # byte-identical across process boundaries

    def test_parallel_decompress(self):
        fields = self._fields(4)
        blobs = compress_fields_parallel(
            fields, "qoz", codec_kwargs={"metric": "cr"},
            rel_error_bound=1e-2, processes=2,
        )
        outs = decompress_blobs_parallel(blobs, processes=2)
        for f, o in zip(fields, outs):
            eb = 1e-2 * (f.max() - f.min())
            assert np.abs(o.astype(np.float64) - f.astype(np.float64)).max() <= eb
