"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path, subprocess_env):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples write PGM files into the cwd
        env=subprocess_env,  # the child needs src/ on PYTHONPATH too
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example reports something
