"""Regenerate the golden-stream fixtures.

Run this ONLY against a revision whose stream format is the one being
pinned (it was first run on the pre-vectorization decoder, PR 1 tree):

    PYTHONPATH=src python tests/data/golden/generate.py

The fixtures freeze (blob, expected output) pairs so later refactors of
the *decoder* can prove byte-identical compatibility: every blob here
must keep decoding to exactly the recorded expectation, and the encoder
must keep producing exactly the recorded blob for the recorded input.
"""

import pathlib
import struct

import numpy as np

from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.encoding.codec import encode_symbol_stream

HERE = pathlib.Path(__file__).parent


def symbol_streams():
    rng = np.random.default_rng(1234)
    cases = {}
    # rle-heavy: dominant zero bin with occasional literals (typical quant indices)
    syms = np.zeros(20000, dtype=np.int64)
    hits = rng.choice(syms.size, size=600, replace=False)
    syms[hits] = rng.integers(1, 40, size=hits.size)
    cases["rle_heavy"] = syms
    # near-uniform: defeats RLE, exercises the plain Huffman path
    cases["uniform"] = rng.integers(0, 200, size=15000).astype(np.int64)
    # skewed geometric: forces code lengths past the 16-bit first-level table
    n = 24
    p = 2.0 ** np.arange(n)
    cases["long_codes"] = rng.choice(n, p=p / p.sum(), size=8000).astype(np.int64)
    # sparse large alphabet
    cases["sparse_alphabet"] = rng.choice(
        np.array([3, 977, 40000, 65000], dtype=np.int64), size=5000
    )
    # tiny + empty edge cases
    cases["tiny"] = np.array([7], dtype=np.int64)
    cases["empty"] = np.zeros(0, dtype=np.int64)
    return cases


def codec_fields():
    rng = np.random.default_rng(99)
    x = np.cumsum(rng.standard_normal((28, 28, 28)), axis=0)
    field3 = (x / np.abs(x).max()).astype(np.float32)
    y = np.cumsum(rng.standard_normal((96, 96)), axis=1)
    field2 = (y / np.abs(y).max()).astype(np.float64)
    return field2, field3


def v1_header_variant(blob: bytes) -> bytes:
    """Re-pack a v2 plain stream as the flag-less v1 layout (same payload)."""
    magic, version, codec, dt, ndim, flags = struct.unpack_from("<4sBBBBB", blob, 0)
    assert magic == b"RPZ1" and version == 2 and flags == 0
    (eb,) = struct.unpack_from("<d", blob, 9)
    body = blob[17:]
    return struct.pack("<4sBBBBd", magic, 1, codec, dt, ndim, eb) + body


def main():
    arrays = {}
    for name, syms in symbol_streams().items():
        blob = encode_symbol_stream(syms)
        arrays[f"sym_{name}__input"] = syms
        arrays[f"sym_{name}__blob"] = np.frombuffer(blob, dtype=np.uint8)

    field2, field3 = codec_fields()
    arrays["field2"] = field2
    arrays["field3"] = field3
    codecs = {
        "sz2": (SZ2(), field2),
        "sz3": (SZ3(), field3),
        "qoz": (QoZ(metric="cr"), field3),
        "zfp": (ZFP(), field3),
        "mgard": (MGARDPlus(), field3),
    }
    for name, (codec, field) in codecs.items():
        blob = codec.compress(field, rel_error_bound=1e-3)
        recon = codec.decompress(blob)
        arrays[f"codec_{name}__blob"] = np.frombuffer(blob, dtype=np.uint8)
        arrays[f"codec_{name}__recon"] = recon
    # one v1-header stream (decoders must keep accepting the old layout)
    sz3_blob = arrays["codec_sz3__blob"].tobytes()
    v1 = v1_header_variant(sz3_blob)
    arrays["codec_sz3_v1__blob"] = np.frombuffer(v1, dtype=np.uint8)
    arrays["codec_sz3_v1__recon"] = arrays["codec_sz3__recon"]

    out = HERE / "golden_streams.npz"
    np.savez_compressed(out, **arrays)
    print(f"wrote {out} ({out.stat().st_size} bytes, {len(arrays)} arrays)")


if __name__ == "__main__":
    main()
