"""Tests for the experiment harness (sweeps, CR search, reports, PGM)."""

import os

import numpy as np
import pytest

from repro import SZ3
from repro.analysis import (
    evaluate_once,
    find_error_bound_for_cr,
    format_table,
    rate_distortion_curve,
    write_pgm,
)


def field(n=96, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 2 * np.pi, n)
    return (
        np.sin(x)[:, None] * np.cos(x)[None, :]
        + 0.01 * rng.standard_normal((n, n))
    ).astype(np.float32)


class TestEvaluate:
    def test_single_point_fields(self):
        pt = evaluate_once(SZ3(), field(), 1e-3)
        assert pt.codec == "sz3"
        assert pt.compression_ratio > 1
        assert pt.bit_rate == pytest.approx(
            32.0 / pt.compression_ratio, rel=1e-6
        )
        assert pt.max_error <= pt.abs_eb
        assert 0 < pt.ssim <= 1
        assert pt.compress_mbps > 0
        assert "psnr" in pt.as_dict()

    def test_curve_monotonicity(self):
        pts = rate_distortion_curve(SZ3(), field(), [1e-2, 1e-3, 1e-4])
        rates = [p.bit_rate for p in pts]
        psnrs = [p.psnr for p in pts]
        assert rates == sorted(rates)  # tighter bound -> more bits
        assert psnrs == sorted(psnrs)  # tighter bound -> better quality

    def test_skip_ssim(self):
        pt = evaluate_once(SZ3(), field(), 1e-3, compute_ssim=False)
        assert pt.ssim != pt.ssim  # NaN


class TestCRSearch:
    def test_hits_target(self):
        data = field(128, seed=1)
        rel_eb, cr, blob = find_error_bound_for_cr(SZ3(), data, 20.0)
        assert abs(cr - 20.0) <= 0.15 * 20.0
        assert isinstance(blob, bytes) and len(blob) > 0

    def test_monotone_direction(self):
        data = field(128, seed=2)
        eb_lo, _, _ = find_error_bound_for_cr(SZ3(), data, 10.0)
        eb_hi, _, _ = find_error_bound_for_cr(SZ3(), data, 40.0)
        assert eb_hi > eb_lo  # larger CR needs looser bound


class TestReport:
    def test_format_table(self):
        s = format_table(
            ["dataset", "CR"], [["rtm", 123.456], ["nyx", 9.1]], title="T"
        )
        lines = s.splitlines()
        assert lines[0] == "T"
        assert "dataset" in lines[1]
        assert "123" in s and "9.10" in s

    def test_handles_nan_and_ints(self):
        s = format_table(["a"], [[float("nan")], [3]])
        assert "nan" in s and "3" in s


class TestPGM:
    def test_writes_valid_pgm(self, tmp_path):
        path = os.path.join(tmp_path, "f.pgm")
        write_pgm(field(32), path)
        with open(path, "rb") as fh:
            data = fh.read()
        assert data.startswith(b"P5\n32 32\n255\n")
        assert len(data) == len(b"P5\n32 32\n255\n") + 32 * 32

    def test_constant_field(self, tmp_path):
        path = os.path.join(tmp_path, "c.pgm")
        write_pgm(np.zeros((4, 4)), path)
        assert os.path.getsize(path) > 0

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros((2, 2, 2)), os.path.join(tmp_path, "x.pgm"))
