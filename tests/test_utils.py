"""Tests for shared helpers (validation, bounds, geometry)."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.utils import (
    ceil_div,
    dtype_code,
    dtype_from_code,
    is_pow2,
    next_pow2,
    resolve_error_bound,
    validate_input,
    value_range,
)


class TestValidateInput:
    def test_accepts_float32_and_float64(self):
        for dtype in (np.float32, np.float64):
            out = validate_input(np.ones((3, 3), dtype=dtype))
            assert out.flags["C_CONTIGUOUS"]

    def test_makes_contiguous(self):
        arr = np.ones((8, 8), dtype=np.float32)[::2, ::2]
        assert not arr.flags["C_CONTIGUOUS"]
        assert validate_input(arr).flags["C_CONTIGUOUS"]

    def test_rejects_non_array(self):
        with pytest.raises(CompressionError):
            validate_input([1.0, 2.0])

    def test_rejects_int_dtype(self):
        with pytest.raises(CompressionError):
            validate_input(np.ones(4, dtype=np.int64))

    def test_rejects_empty(self):
        with pytest.raises(CompressionError):
            validate_input(np.zeros((0,), dtype=np.float32))

    def test_rejects_5d(self):
        with pytest.raises(CompressionError):
            validate_input(np.zeros((2,) * 5, dtype=np.float32))

    def test_rejects_nan_and_inf(self):
        for bad in (np.nan, np.inf):
            arr = np.ones(4, dtype=np.float64)
            arr[1] = bad
            with pytest.raises(CompressionError):
                validate_input(arr)


class TestErrorBounds:
    def test_absolute_passthrough(self):
        data = np.array([0.0, 10.0])
        assert resolve_error_bound(data, 0.5, None) == 0.5

    def test_relative_scales_by_value_range(self):
        data = np.array([0.0, 10.0])
        assert resolve_error_bound(data, None, 1e-2) == pytest.approx(0.1)

    def test_both_or_neither_rejected(self):
        data = np.array([0.0, 1.0])
        with pytest.raises(CompressionError):
            resolve_error_bound(data, 0.1, 0.1)
        with pytest.raises(CompressionError):
            resolve_error_bound(data, None, None)

    def test_relative_on_constant_field(self):
        data = np.full(4, 5.0)
        eb = resolve_error_bound(data, None, 1e-3)
        assert eb > 0

    def test_invalid_bounds_rejected(self):
        data = np.array([0.0, 1.0])
        for bad in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(CompressionError):
                resolve_error_bound(data, bad, None)

    def test_value_range(self):
        assert value_range(np.array([-2.0, 3.0])) == 5.0


class TestSmallHelpers:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4
        assert ceil_div(1, 10) == 1

    def test_next_pow2(self):
        assert next_pow2(1) == 1
        assert next_pow2(3) == 4
        assert next_pow2(64) == 64
        assert next_pow2(65) == 128

    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(64)
        assert not is_pow2(0) and not is_pow2(48) and not is_pow2(-4)

    def test_dtype_codes_roundtrip(self):
        for dt in (np.float32, np.float64):
            assert dtype_from_code(dtype_code(np.dtype(dt))) == np.dtype(dt)
        with pytest.raises(CompressionError):
            dtype_code(np.dtype(np.int32))
        with pytest.raises(CompressionError):
            dtype_from_code(9)
